// Table 2: demand prediction error rates (in GB) for various sampling
// levels in elastic provisioner tuning — the Algorithm 1 what-if analysis.
//
// Setup (§6.3): the tuner trains on the first third of each workload's
// demand observations and is verified against the remaining two thirds.
// Demand is observed at ingest granularity: per day for MODIS, per month
// for AIS (the rate at which NOAA publishes the data).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/tuning.h"
#include "util/strings.h"
#include "util/units.h"
#include "workload/ais.h"
#include "workload/modis.h"

using namespace arraydb;

namespace {

// Cumulative storage demand per ingest for a workload.
std::vector<double> CumulativeLoads(const workload::Workload& wl,
                                    bool split_ais_months) {
  std::vector<double> loads;
  double total = 0.0;
  for (int cycle = 0; cycle < wl.num_cycles(); ++cycle) {
    const auto batch = wl.GenerateBatch(cycle);
    if (!split_ais_months) {
      for (const auto& c : batch) {
        total += util::BytesToGb(static_cast<double>(c.bytes));
      }
      loads.push_back(total);
      continue;
    }
    // Group by the month coordinate so each observation is one ingest.
    std::map<int64_t, double> months;
    for (const auto& c : batch) {
      months[c.coords[0]] += util::BytesToGb(static_cast<double>(c.bytes));
    }
    for (const auto& [month, gb] : months) {
      total += gb;
      loads.push_back(total);
    }
  }
  return loads;
}

void Evaluate(const char* name, const std::vector<double>& loads, int psi) {
  const size_t train_len = loads.size() / 3;
  const std::vector<double> train(loads.begin(),
                                  loads.begin() + static_cast<long>(train_len));
  const std::vector<double> test(loads.begin() + static_cast<long>(train_len),
                                 loads.end());

  const auto train_errors = core::SamplingWhatIfErrors(train, psi);
  std::vector<std::string> train_cells = {std::string(name) + " Train"};
  std::vector<std::string> test_cells = {std::string(name) + " Test"};
  for (int s = 1; s <= psi; ++s) {
    train_cells.push_back(
        util::StrFormat("%.1f", train_errors[static_cast<size_t>(s - 1)]));
    test_cells.push_back(
        util::StrFormat("%.1f", core::SamplePredictionError(test, s)));
  }
  const std::vector<size_t> widths = {13, 6, 6, 6, 6};
  bench::Row(train_cells, widths);
  bench::Row(test_cells, widths);

  std::printf("  -> tuner selects s = %d for %s\n",
              core::TuneSampleCount(train, psi), name);
}

}  // namespace

int main() {
  std::printf(
      "Table 2: Demand prediction error rates (in GB) for various sampling\n"
      "levels in elastic provisioner tuning.\n"
      "(paper reference: SIGMOD'14 Table 2)\n\n");

  const int psi = 4;
  const std::vector<size_t> widths = {13, 6, 6, 6, 6};
  bench::Row({"Samples (s)", "1", "2", "3", "4"}, widths);
  bench::Rule(45);

  workload::AisWorkload ais;
  Evaluate("AIS", CumulativeLoads(ais, /*split_ais_months=*/true), psi);

  // §5.2: the what-if tuning "may be refined as the workload progresses";
  // a month of daily observations gives the averaging advantage of larger
  // s room to show over the iid daily noise.
  workload::ModisConfig modis_cfg;
  modis_cfg.days = 30;
  workload::ModisWorkload modis(modis_cfg);
  Evaluate("MODIS", CumulativeLoads(modis, /*split_ais_months=*/false), psi);

  bench::Rule(45);
  std::printf(
      "Paper shape checks: AIS (seasonal, shifting demand) is best served "
      "by\nfew samples; MODIS (steady growth with iid noise) favors more "
      "samples;\ntrain and test errors correlate, so the parameter is "
      "well-modeled.\n");
  return 0;
}
