// Multi-tenant serving under mixed heavy traffic: interactive point
// queries share the cluster with concurrent batch analytics while an
// arbitrated migration drains in the background (ingest-heavy AIS
// staircase, §6.2 setup). Compares the serving layer's admission +
// priority tiers + morsel-style time slicing against a single-queue FIFO
// baseline on interactive tail latency.
//
// Latencies are simulated milliseconds from the deterministic virtual-time
// SessionServer, so the numbers are machine-independent and the
// interactive p99 can be gated as a hard ceiling in CI. Emits
// BENCH_serving.json.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "serve/serve.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/runner.h"

using namespace arraydb;

namespace {

// The ingest-heavy staircase configuration from bench_reorg's arbitration
// experiment (bandwidth-constrained cluster, 2.5x AIS volume) with the
// serving scenario enabled — the heaviest sustained mix the runner can
// stage: batch suites + interactive stream + ingest + paced migration.
workload::RunResult RunServing(const serve::SchedulerPolicy& policy,
                               bool bounded_admission) {
  workload::RunnerConfig cfg = bench::PartitionerExperimentConfig(
      core::PartitionerKind::kHilbertCurve);
  cfg.policy = workload::ScaleOutPolicy::kStaircase;
  cfg.max_nodes = 64;
  cfg.reorg.mode = workload::ReorgMode::kOverlapped;
  cfg.reorg.budget_policy = workload::MigrationBudgetPolicy::kArbitrated;
  cfg.ingest.threads = 0;
  cfg.cost_params.net_minutes_per_gb = 1.0;
  cfg.serving.enabled = true;
  cfg.serving.policy = policy;
  if (!bounded_admission) {
    // The FIFO baseline admits everything: one unbounded queue, so the two
    // arms serve the identical request population and the comparison is
    // purely about scheduling.
    cfg.serving.admission.max_session_queue = 1 << 20;
    cfg.serving.admission.max_tier_queue = 1 << 20;
    cfg.serving.admission.max_inflight_gb = 1e18;
  }
  workload::AisConfig heavy;
  heavy.gb_per_month = 25.0;
  workload::AisWorkload ais(heavy);
  return workload::WorkloadRunner(cfg).Run(ais);
}

}  // namespace

int main() {
  std::printf(
      "Multi-tenant serving: interactive point queries vs. concurrent batch\n"
      "suites + ingest + arbitrated migration (ingest-heavy AIS "
      "staircase).\n\n");

  const auto fifo = RunServing(serve::SchedulerPolicy::Fifo(),
                               /*bounded_admission=*/false);
  const auto served = RunServing(serve::SchedulerPolicy{},
                                 /*bounded_admission=*/true);

  // Determinism: the virtual-time machine is a pure function of the
  // submissions, so a second run must be bit-identical.
  const auto served_again = RunServing(serve::SchedulerPolicy{},
                                       /*bounded_admission=*/true);
  if (served.serving_interactive.p99_ms !=
          served_again.serving_interactive.p99_ms ||
      served.serving_interactive.p50_ms !=
          served_again.serving_interactive.p50_ms ||
      served.serving_batch.p99_ms != served_again.serving_batch.p99_ms ||
      served.serving_admitted != served_again.serving_admitted ||
      served.serving_rejected != served_again.serving_rejected) {
    std::fprintf(stderr, "FAIL: serving scenario is not deterministic\n");
    return 1;
  }

  const std::vector<size_t> widths = {14, 10, 10, 10, 10, 9, 9};
  bench::Row({"Scheduler", "int p50", "int p99", "bat p50", "bat p99",
              "admit", "shed"},
             widths);
  bench::Row({"", "(ms)", "(ms)", "(ms)", "(ms)", "", ""}, widths);
  bench::Rule(84);
  const auto row = [&](const char* name, const workload::RunResult& r) {
    bench::Row({name, util::StrFormat("%.1f", r.serving_interactive.p50_ms),
                util::StrFormat("%.1f", r.serving_interactive.p99_ms),
                util::StrFormat("%.1f", r.serving_batch.p50_ms),
                util::StrFormat("%.1f", r.serving_batch.p99_ms),
                util::StrFormat("%d", static_cast<int>(r.serving_admitted)),
                util::StrFormat("%d", static_cast<int>(r.serving_rejected))},
               widths);
  };
  row("fifo", fifo);
  row("served", served);
  bench::Rule(84);

  const double improvement =
      fifo.serving_interactive.p99_ms /
      std::max(served.serving_interactive.p99_ms, 1e-9);
  std::printf(
      "Priority tiers + time slicing cut the interactive p99 %.1fx: point\n"
      "queries preempt batch work at slice boundaries (the virtual pickup\n"
      "counter) instead of queueing behind whole suites.\n",
      improvement);

  bench::JsonBenchWriter writer;
  writer.AddMetric("p50_interactive_ms", served.serving_interactive.p50_ms);
  writer.AddMetric("p99_interactive_ms", served.serving_interactive.p99_ms);
  writer.AddMetric("p99_batch_ms", served.serving_batch.p99_ms);
  writer.AddMetric("fifo_p99_interactive_ms",
                   fifo.serving_interactive.p99_ms);
  writer.AddMetric("p99_improvement_x", improvement);
  writer.AddMetric("interactive_served",
                   static_cast<double>(served.serving_interactive.count));
  writer.AddMetric("admitted", static_cast<double>(served.serving_admitted));
  writer.AddMetric("rejected", static_cast<double>(served.serving_rejected));
  if (!writer.WriteFile("BENCH_serving.json")) {
    std::fprintf(stderr, "failed to write BENCH_serving.json\n");
    return 1;
  }
  std::printf("\nWrote BENCH_serving.json\n");

  // Acceptance: admission + slicing must beat the FIFO single queue on
  // interactive tail latency by at least 3x under this mix.
  if (!(improvement >= 3.0)) {
    std::fprintf(stderr,
                 "FAIL: interactive p99 improvement %.2fx below the 3x "
                 "acceptance bar (fifo %.1f ms vs served %.1f ms)\n",
                 improvement, fifo.serving_interactive.p99_ms,
                 served.serving_interactive.p99_ms);
    return 1;
  }
  if (served.serving_interactive.count <= 0) {
    std::fprintf(stderr, "FAIL: no interactive requests were served\n");
    return 1;
  }
  return 0;
}
