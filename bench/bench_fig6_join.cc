// Figure 6: join duration for unskewed data — the MODIS vegetation-index
// join over the most recent day of measurements, per workload cycle, for
// every partitioner.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Figure 6: Join duration for unskewed data (MODIS vegetation index\n"
      "over the most recent day), minutes per workload cycle.\n"
      "(paper reference: SIGMOD'14 Figure 6)\n\n");

  workload::ModisWorkload modis;
  std::map<std::string, std::vector<double>> series;
  for (const auto kind : core::AllPartitionerKinds()) {
    workload::WorkloadRunner runner(bench::PartitionerExperimentConfig(kind));
    const auto result = runner.Run(modis);
    auto& row = series[core::PartitionerKindName(kind)];
    for (const auto& cycle : result.cycles) {
      for (const auto& [name, minutes] : cycle.query_minutes) {
        if (name == workload::ModisWorkload::kJoinQueryName) {
          row.push_back(minutes);
        }
      }
    }
  }

  std::vector<size_t> widths = {16};
  std::vector<std::string> header = {"Partitioner"};
  for (int c = 1; c <= modis.num_cycles(); ++c) {
    widths.push_back(5);
    header.push_back(util::StrFormat("c%d", c));
  }
  bench::Row(header, widths);
  bench::Rule(16 + 7 * static_cast<size_t>(modis.num_cycles()));

  double append_mean = 0.0;
  double others_mean = 0.0;
  int others = 0;
  for (const auto kind : core::AllPartitionerKinds()) {
    const auto& row = series[core::PartitionerKindName(kind)];
    std::vector<std::string> cells = {core::PartitionerKindName(kind)};
    double sum = 0.0;
    for (const double m : row) {
      cells.push_back(util::StrFormat("%.2f", m));
      sum += m;
    }
    bench::Row(cells, widths);
    const double mean = sum / static_cast<double>(row.size());
    if (kind == core::PartitionerKind::kAppend) {
      append_mean = mean;
    } else {
      others_mean += mean;
      ++others;
    }
  }
  bench::Rule(16 + 7 * static_cast<size_t>(modis.num_cycles()));
  std::printf(
      "Append averages %.1f min per join vs %.1f min for the other schemes\n"
      "— the paper's unstable Append behaviour: the joined (most recent)\n"
      "chunks sit on only one or two hosts, so the join never gains\n"
      "parallelism as nodes are added, while every other scheme's latency\n"
      "falls with cluster growth because the day's chunks spread over all\n"
      "nodes. The non-splitting schemes (Consistent Hash, Uniform Range)\n"
      "show the paper's slight dip once the host count reaches six.\n",
      append_mean, others_mean / others);
  return 0;
}
