// Figure 6: join duration for unskewed data — the MODIS vegetation-index
// join over the most recent day of measurements, per workload cycle, for
// every partitioner — plus the real join execution layer: the morsel-
// parallel radix-partitioned rank-key joins (exec/join.h) timed against
// their sequential forms and against the retired unordered_set join.
//
// Emits BENCH_fig6_join.json:
//   * fig6_<partitioner>_join_minutes — mean simulated join minutes per
//     cycle for each partitioner (deterministic model output, gated tight
//     by ci/check_bench_trend.py as a lower-better _minutes metric);
//   * dim_join/attr_join seq/par ns-per-probe-cell entries and the legacy
//     dim_join_set entry (wall-clock, machine-normalized by the checker);
//   * join_parallel_speedup — the gate target for the committed
//     floor_join_parallel_speedup (>= 2x): the best join speedup at full
//     hardware concurrency. Meaningful only where parallelism exists, so
//     on machines with fewer than 4 hardware threads the gate metric is
//     clamped to the floor (flagged by join_gate_vacuous = 1); the raw
//     *_parallel_ratio metrics always carry the honest measurements.
//
// Before any timing counts, every parallel/partitioned join result is
// asserted identical to the sequential set-based specification across
// thread counts and partition-bit settings — the join determinism
// contract at bench scale.
//
// Build & run:  ./build/bench_fig6_join

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "exec/join.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "workload/modis.h"
#include "workload/runner.h"
#include "workload/sample_data.h"

using namespace arraydb;

namespace {

// Defeats dead-code elimination across timed runs.
volatile double g_sink = 0.0;

// The CI floor: the best join speedup at full hardware concurrency must
// stay at least this on >= 4-thread machines.
constexpr double kRequiredJoinSpeedup = 2.0;
constexpr int kMinThreadsForGate = 4;

/// Minimum wall time per item over `reps` runs of fn().
template <typename Fn>
double MinNsPerItem(int reps, int64_t items, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    best = std::min(best, ns / static_cast<double>(items));
  }
  return best;
}

exec::JoinOptions JOpts(int threads,
                        int bits = exec::kDefaultJoinPartitionBits) {
  exec::JoinOptions opts;
  opts.morsel.threads = threads;
  opts.partition_bits = bits;
  return opts;
}

/// "Consistent Hash" -> "consistent_hash", "Incr. Quadtree" ->
/// "incr_quadtree": JSON metric names stay shell- and checker-friendly.
std::string MetricName(const std::string& partitioner) {
  std::string out;
  bool pending_sep = false;
  for (const char c : partitioner) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: Join duration for unskewed data (MODIS vegetation index\n"
      "over the most recent day), minutes per workload cycle.\n"
      "(paper reference: SIGMOD'14 Figure 6)\n\n");

  bench::JsonBenchWriter writer;

  workload::ModisWorkload modis;
  std::map<std::string, std::vector<double>> series;
  for (const auto kind : core::AllPartitionerKinds()) {
    workload::WorkloadRunner runner(bench::PartitionerExperimentConfig(kind));
    const auto result = runner.Run(modis);
    auto& row = series[core::PartitionerKindName(kind)];
    for (const auto& cycle : result.cycles) {
      for (const auto& [name, minutes] : cycle.query_minutes) {
        if (name == workload::ModisWorkload::kJoinQueryName) {
          row.push_back(minutes);
        }
      }
    }
  }

  std::vector<size_t> widths = {16};
  std::vector<std::string> header = {"Partitioner"};
  for (int c = 1; c <= modis.num_cycles(); ++c) {
    widths.push_back(5);
    header.push_back(util::StrFormat("c%d", c));
  }
  bench::Row(header, widths);
  bench::Rule(16 + 7 * static_cast<size_t>(modis.num_cycles()));

  double append_mean = 0.0;
  double others_mean = 0.0;
  int others = 0;
  for (const auto kind : core::AllPartitionerKinds()) {
    const std::string name = core::PartitionerKindName(kind);
    const auto& row = series[name];
    std::vector<std::string> cells = {name};
    double sum = 0.0;
    for (const double m : row) {
      cells.push_back(util::StrFormat("%.2f", m));
      sum += m;
    }
    bench::Row(cells, widths);
    const double mean = sum / static_cast<double>(row.size());
    writer.AddMetric("fig6_" + MetricName(name) + "_join_minutes", mean);
    if (kind == core::PartitionerKind::kAppend) {
      append_mean = mean;
    } else {
      others_mean += mean;
      ++others;
    }
  }
  bench::Rule(16 + 7 * static_cast<size_t>(modis.num_cycles()));
  std::printf(
      "Append averages %.1f min per join vs %.1f min for the other schemes\n"
      "— the paper's unstable Append behaviour: the joined (most recent)\n"
      "chunks sit on only one or two hosts, so the join never gains\n"
      "parallelism as nodes are added, while every other scheme's latency\n"
      "falls with cluster growth because the day's chunks spread over all\n"
      "nodes. The non-splitting schemes (Consistent Hash, Uniform Range)\n"
      "show the paper's slight dip once the host count reaches six.\n\n",
      append_mean, others_mean / others);

  // -- The real join execution layer ---------------------------------------

  const int hw_threads = util::ResolveThreadCount(0);
  const bool gate_active = hw_threads >= kMinThreadsForGate;
  std::printf("radix-partitioned rank-key joins vs. sequential (%d hardware "
              "threads)%s\n\n",
              hw_threads,
              gate_active ? ""
                          : " — fewer than 4 threads, speedup gate vacuous");

  // A small build band vs. a much larger probe band: the morsel-parallel
  // probe dominates, the shape the radix join is built for.
  const array::Array build_band =
      workload::MakeModisBand(/*days=*/2, /*lon_cells=*/256,
                              /*lat_cells=*/128, /*seed=*/7);
  const array::Array probe_band =
      workload::MakeModisBand(/*days=*/12, /*lon_cells=*/256,
                              /*lat_cells=*/128, /*seed=*/9);
  const int64_t probe_cells = probe_band.total_cells();
  std::printf("build: %lld cells, probe: %lld cells\n\n",
              static_cast<long long>(build_band.total_cells()),
              static_cast<long long>(probe_cells));

  // Keys for the attribute join: a band of radiance values.
  std::unordered_set<int64_t> attr_keys;
  for (int64_t k = 0; k <= 200; ++k) attr_keys.insert(k);

  // Determinism first: the radix join must reproduce the set-based
  // specification exactly at every thread count and partition setting.
  const int64_t dim_want =
      exec::internal::DimJoinCountBySet(build_band, probe_band);
  for (const int threads : {1, 0}) {
    for (const int bits : {0, 4, 8}) {
      if (exec::DimJoinCount(build_band, probe_band, JOpts(threads, bits)) !=
          dim_want) {
        std::fprintf(stderr,
                     "FAIL: DimJoinCount(threads=%d, bits=%d) != set spec\n",
                     threads, bits);
        return 1;
      }
    }
  }
  const int64_t attr_want =
      exec::AttrJoinCount(probe_band, 1, attr_keys, JOpts(1));
  for (const int threads : {1, 0}) {
    for (const int bits : {0, 4, 8}) {
      if (exec::AttrJoinCount(probe_band, 1, attr_keys,
                              JOpts(threads, bits)) != attr_want) {
        std::fprintf(stderr,
                     "FAIL: AttrJoinCount(threads=%d, bits=%d) not "
                     "invariant\n",
                     threads, bits);
        return 1;
      }
    }
  }
  std::printf("determinism: dim join = %lld, attr join = %lld at every "
              "(threads, partition bits)\n\n",
              static_cast<long long>(dim_want),
              static_cast<long long>(attr_want));

  double best_speedup = 0.0;
  const auto record = [&writer, &best_speedup](const char* name,
                                               double seq_ns, double par_ns) {
    writer.Add({std::string(name) + "/seq", seq_ns,
                seq_ns > 0 ? 1e9 / seq_ns : 0.0});
    writer.Add({std::string(name) + "/par", par_ns,
                par_ns > 0 ? 1e9 / par_ns : 0.0});
    const double speedup = par_ns > 0.0 ? seq_ns / par_ns : 1.0;
    // "_ratio", not "_speedup": per-join values are informational; only
    // the best-of-suite gate metric below is enforced directionally.
    writer.AddMetric(std::string(name) + "_parallel_ratio", speedup);
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%-14s %9.3f ns/cell seq  %9.3f ns/cell par  %5.2fx\n",
                name, seq_ns, par_ns, speedup);
  };

  constexpr int kReps = 7;
  record("dim_join",
         MinNsPerItem(kReps, probe_cells,
                      [&] {
                        return static_cast<double>(exec::DimJoinCount(
                            build_band, probe_band, JOpts(1)));
                      }),
         MinNsPerItem(kReps, probe_cells, [&] {
           return static_cast<double>(
               exec::DimJoinCount(build_band, probe_band, JOpts(0)));
         }));
  record("attr_join",
         MinNsPerItem(kReps, probe_cells,
                      [&] {
                        return static_cast<double>(exec::AttrJoinCount(
                            probe_band, 1, attr_keys, JOpts(1)));
                      }),
         MinNsPerItem(kReps, probe_cells, [&] {
           return static_cast<double>(
               exec::AttrJoinCount(probe_band, 1, attr_keys, JOpts(0)));
         }));

  // The retired set join, timed as the "seed" reference: the radix join's
  // sequential form should already beat it (no per-cell Coordinates
  // allocation, no vector hashing); the ratio is informational.
  const double set_ns = MinNsPerItem(kReps, probe_cells, [&] {
    return static_cast<double>(
        exec::internal::DimJoinCountBySet(build_band, probe_band));
  });
  writer.Add({"dim_join_set/seq", set_ns, set_ns > 0 ? 1e9 / set_ns : 0.0});
  const auto* radix_seq = writer.Find("dim_join/seq");
  const double radix_vs_set =
      radix_seq && radix_seq->ns_per_op > 0.0 ? set_ns / radix_seq->ns_per_op
                                              : 1.0;
  writer.AddMetric("dim_join_radix_vs_set_ratio", radix_vs_set);
  std::printf("%-14s %9.3f ns/cell seq  (radix seq is %.2fx faster)\n",
              "dim_join_set", set_ns, radix_vs_set);

  // The gate metric: best join speedup at full concurrency, clamped to
  // the floor (and flagged vacuous) on machines below the thread floor.
  const double gate_speedup =
      gate_active ? best_speedup
                  : std::max(best_speedup, kRequiredJoinSpeedup);
  writer.AddMetric("join_parallel_speedup", gate_speedup);
  writer.AddMetric("floor_join_parallel_speedup", kRequiredJoinSpeedup);
  writer.AddMetric("join_gate_vacuous", gate_active ? 0.0 : 1.0);
  writer.AddMetric("hardware_threads", static_cast<double>(hw_threads));
  std::printf("\nbest join speedup %.2fx (gate metric %.2fx%s)\n",
              best_speedup, gate_speedup, gate_active ? "" : ", vacuous");

  if (!writer.WriteFile("BENCH_fig6_join.json")) {
    std::fprintf(stderr, "failed to write BENCH_fig6_join.json\n");
    return 1;
  }
  std::printf("Wrote BENCH_fig6_join.json\n");

  // The acceptance property this bench exists to demonstrate.
  if (gate_active && best_speedup < kRequiredJoinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best join speedup only %.2fx sequential "
                 "(>= %.0fx required on >= %d-thread machines)\n",
                 best_speedup, kRequiredJoinSpeedup, kMinThreadsForGate);
    return 1;
  }
  return 0;
}
