// Figure 4: elastic partitioner insert and reorganization durations for
// both workloads, with load-balancing performance (relative standard
// deviation of per-node storage) as labels.
//
// Setup (§6.2): clusters start with 2 nodes and add 2 whenever capacity is
// reached, ending at 8; MODIS runs 14 daily cycles (630 GB), AIS 10
// quarterly cycles (400 GB). Queries are disabled — this figure measures
// only the data-loading and redistribution phases.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Figure 4: Elastic partitioner insert and reorganization durations.\n"
      "Labels denote load balancing performance in relative standard "
      "deviation.\n"
      "(paper reference: SIGMOD'14 Figure 4)\n\n");

  workload::ModisWorkload modis;
  workload::AisWorkload ais;

  const std::vector<size_t> widths = {16, 12, 11, 9, 12, 11, 9};
  bench::Row({"Partitioner", "MODIS ins", "MODIS re", "RSD", "AIS ins",
              "AIS re", "RSD"},
             widths);
  bench::Row({"", "(min)", "(min)", "(%)", "(min)", "(min)", "(%)"}, widths);
  bench::Rule(92);

  double incr_reorg = 0.0;
  int incr_count = 0;
  double global_reorg = 0.0;
  int global_count = 0;

  for (const auto kind : core::AllPartitionerKinds()) {
    workload::RunnerConfig cfg = bench::PartitionerExperimentConfig(kind);
    cfg.run_queries = false;
    // Chunk-parallel ingest (placement prewarm sharded over all cores);
    // metrics are identical to the sequential mode by construction.
    cfg.ingest.threads = 0;
    workload::WorkloadRunner runner(cfg);
    const auto rm = runner.Run(modis);
    const auto ra = runner.Run(ais);
    bench::Row({core::PartitionerKindName(kind),
                util::StrFormat("%.1f", rm.total_insert_minutes),
                util::StrFormat("%.1f", rm.total_reorg_minutes),
                util::StrFormat("%.0f%%", rm.mean_rsd * 100.0),
                util::StrFormat("%.1f", ra.total_insert_minutes),
                util::StrFormat("%.1f", ra.total_reorg_minutes),
                util::StrFormat("%.0f%%", ra.mean_rsd * 100.0)},
               widths);
    const double reorg = rm.total_reorg_minutes + ra.total_reorg_minutes;
    if (kind == core::PartitionerKind::kRoundRobin ||
        kind == core::PartitionerKind::kUniformRange) {
      global_reorg += reorg;
      ++global_count;
    } else if (kind != core::PartitionerKind::kAppend) {
      incr_reorg += reorg;
      ++incr_count;
    }
  }
  bench::Rule(92);
  std::printf(
      "Global schemes' mean reorganization is %.1fx the incremental "
      "schemes'\n(paper: 2.5x on average; Append excluded — it moves "
      "nothing).\n",
      (global_reorg / global_count) / (incr_reorg / incr_count));
  std::printf(
      "Paper shape checks: insert time near-constant per workload across\n"
      "partitioners; Append slightly slower inserts (single remote target);\n"
      "fine-grained schemes (Round Robin / Extendible / Consistent) carry\n"
      "the lowest RSD; Uniform Range is brittle to AIS skew.\n");
  return 0;
}
