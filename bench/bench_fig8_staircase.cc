// Figure 8: the MODIS staircase — provisioned node count per workload
// cycle for leading-staircase set points p = 1, 3, 6, against the demand
// curve (storage demand / per-node capacity).
//
// Setup (§6.3): Consistent Hash partitioning (even balance, simple
// redistribution), 100 GB nodes, s = 4 samples, 15 daily cycles.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Figure 8: MODIS staircase with varying provisioner configurations.\n"
      "(paper reference: SIGMOD'14 Figure 8; nodes provisioned per cycle)\n\n");

  workload::ModisConfig modis_cfg;
  modis_cfg.days = 15;
  workload::ModisWorkload modis(modis_cfg);

  std::map<int, std::vector<int>> nodes_per_p;
  std::map<int, int> scaleouts_per_p;
  std::vector<double> demand;
  for (const int p : {1, 3, 6}) {
    workload::RunnerConfig cfg;
    cfg.partitioner = core::PartitionerKind::kConsistentHash;
    cfg.policy = workload::ScaleOutPolicy::kStaircase;
    cfg.initial_nodes = 1;
    cfg.staircase_samples = 4;
    cfg.staircase_plan_ahead = p;
    cfg.max_nodes = 64;
    cfg.run_queries = false;
    workload::WorkloadRunner runner(cfg);
    const auto result = runner.Run(modis);
    int count = 0;
    for (const auto& m : result.cycles) {
      nodes_per_p[p].push_back(m.nodes_after);
      if (m.nodes_after > m.nodes_before) ++count;
      if (p == 1) demand.push_back(m.load_gb / 100.0);
    }
    scaleouts_per_p[p] = count;
  }

  std::vector<size_t> widths = {12};
  std::vector<std::string> header = {"Cycle"};
  for (int c = 1; c <= modis.num_cycles(); ++c) {
    widths.push_back(4);
    header.push_back(util::StrFormat("%d", c));
  }
  bench::Row(header, widths);
  bench::Rule(12 + 6 * static_cast<size_t>(modis.num_cycles()));
  {
    std::vector<std::string> cells = {"Demand"};
    for (const double d : demand) cells.push_back(util::StrFormat("%.1f", d));
    bench::Row(cells, widths);
  }
  for (const int p : {1, 3, 6}) {
    std::vector<std::string> cells = {util::StrFormat("p = %d", p)};
    for (const int n : nodes_per_p[p]) {
      cells.push_back(util::StrFormat("%d", n));
    }
    bench::Row(cells, widths);
  }
  bench::Rule(12 + 6 * static_cast<size_t>(modis.num_cycles()));
  std::printf(
      "Scale-out operations: p=1 -> %d, p=3 -> %d, p=6 -> %d.\n",
      scaleouts_per_p[1], scaleouts_per_p[3], scaleouts_per_p[6]);
  std::printf(
      "Paper shape checks: the lazy set point (p=1) hugs the demand curve "
      "with\nfrequent reorganizations; p=3 steps two nodes at a time and "
      "reorganizes\nabout half as often; p=6 expands eagerly in large "
      "steps, over-provisioning\nearly in exchange for fewer "
      "redistributions. Capacity always covers demand.\n");
  return 0;
}
