// Table 3: analytical cost modeling of MODIS controller set points —
// the Eq. 5-9 estimate vs the measured cost in node hours, for
// p in {1, 3, 6}, over workload cycles 5-8 (the first several iterations
// after the cluster reaches capacity), with s = 4 samples.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/tuning.h"
#include "util/strings.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Table 3: Analytical cost modeling of MODIS controller set points.\n"
      "Costs in node hours over workload cycles 4-11 (one full staircase\n"
      "period after the cluster first reaches capacity).\n"
      "(paper reference: SIGMOD'14 Table 3)\n\n");

  workload::ModisConfig modis_cfg;
  modis_cfg.days = 15;
  workload::ModisWorkload modis(modis_cfg);

  // Run each configuration and measure Eq. 1 over cycles 5-8 (1-based).
  std::map<int, double> measured;
  std::map<int, core::ScaleOutCostModelParams> model_params;
  for (const int p : {1, 3, 6}) {
    workload::RunnerConfig cfg;
    cfg.partitioner = core::PartitionerKind::kConsistentHash;
    cfg.policy = workload::ScaleOutPolicy::kStaircase;
    cfg.initial_nodes = 1;
    cfg.staircase_samples = 4;
    cfg.staircase_plan_ahead = p;
    cfg.max_nodes = 64;
    workload::WorkloadRunner runner(cfg);
    const auto result = runner.Run(modis);

    double node_hours = 0.0;
    for (const auto& m : result.cycles) {
      if (m.cycle < 3 || m.cycle > 10) continue;  // Cycles 4-11, 1-based.
      node_hours += static_cast<double>(m.nodes_after) *
                    (m.insert_minutes + m.reorg_minutes + m.spj_minutes +
                     m.science_minutes) /
                    60.0;
    }
    measured[p] = node_hours;

    // Capture the analytical model's inputs from the state at cycle 4 —
    // the tuner runs when the first post-capacity cycles are known.
    const auto& c4 = result.cycles[3];
    core::ScaleOutCostModelParams params;
    params.l0_gb = c4.load_gb;
    params.mu_gb = (result.cycles[3].load_gb - result.cycles[0].load_gb) / 3.0;
    params.capacity_gb = 100.0;
    params.n0 = c4.nodes_after;
    params.w0_minutes = c4.spj_minutes + c4.science_minutes;
    params.delta_io_min_per_gb = cfg.cost_params.io_minutes_per_gb;
    params.t_net_min_per_gb = cfg.cost_params.net_minutes_per_gb;
    params.horizon_m = 8;
    model_params[p] = params;
  }

  const std::vector<size_t> widths = {8, 14, 14};
  bench::Row({"", "Cost Estimate", "Measured Cost"}, widths);
  bench::Rule(40);
  int best_est = 0, best_meas = 0;
  double best_est_v = 1e18, best_meas_v = 1e18;
  for (const int p : {1, 3, 6}) {
    const double estimate =
        core::EstimateConfigCostNodeHours(p, model_params[p]);
    bench::Row({util::StrFormat("p = %d", p),
                util::StrFormat("%.1f", estimate),
                util::StrFormat("%.1f", measured[p])},
               widths);
    if (estimate < best_est_v) {
      best_est_v = estimate;
      best_est = p;
    }
    if (measured[p] < best_meas_v) {
      best_meas_v = measured[p];
      best_meas = p;
    }
  }
  bench::Rule(40);
  std::printf("Model argmin: p = %d; measured argmin: p = %d.\n", best_est,
              best_meas);
  std::printf(
      "Paper shape checks: estimates and measurements correlate across set\n"
      "points, and both measured columns agree that lazy scaling is not\n"
      "optimal. Deviations from the paper's exact ordering (their model\n"
      "picks p = 3) are discussed in EXPERIMENTS.md — our simulated query\n"
      "engine parallelizes closer to linearly than the authors' testbed,\n"
      "which flattens the over-provisioning penalty Eq. 9 relies on.\n");
  return 0;
}
