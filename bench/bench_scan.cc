// SIMD scan kernels vs. their scalar fallbacks on a scaled-up MODIS band:
// the per-dimension range predicate (RangeMask), the attribute reductions
// (Sum/Min/Max), the batched chunk bbox prune, and the end-to-end operators
// they back (FilterBoxSpans, AttrQuantile extremes, GroupBySum).
//
// Emits BENCH_scan.json. The *_ratio metrics are same-machine scalar/SIMD
// speed ratios — deterministic in direction, machine-normalized by
// construction — and ci/check_bench_trend.py enforces the committed
// floor_filter_simd_ratio on the filter kernel (>= 2x).
//
// Build & run:  ./build/bench_scan

#include <chrono>
#include <cstdio>
#include <vector>

#include "array/cell_span.h"
#include "bench/bench_util.h"
#include "exec/operators.h"
#include "simd/dispatch.h"
#include "simd/scan_kernels.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/sample_data.h"

using namespace arraydb;

namespace {

// Defeats dead-code elimination across timed runs.
volatile double g_sink = 0.0;

// The CI floor: the AVX2 filter kernel must stay at least this many times
// the scalar fallback on the same machine.
constexpr double kRequiredFilterRatio = 2.0;

/// Minimum wall time per item over `reps` runs of fn() (which returns a
/// checksum fed to the sink).
template <typename Fn>
double MinNsPerItem(int reps, int64_t items, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    best = std::min(best, ns / static_cast<double>(items));
  }
  return best;
}

struct VariantTimes {
  double scalar_ns = 0.0;
  double simd_ns = 0.0;

  double Ratio() const { return simd_ns > 0.0 ? scalar_ns / simd_ns : 1.0; }
};

/// Times fn under forced-scalar and (when usable) forced-AVX2 dispatch.
template <typename Fn>
VariantTimes TimeBothDispatches(int reps, int64_t items, Fn&& fn,
                                bool avx2_usable) {
  VariantTimes t;
  {
    const simd::ScopedDispatch forced(simd::DispatchLevel::kScalar);
    t.scalar_ns = MinNsPerItem(reps, items, fn);
  }
  if (avx2_usable) {
    const simd::ScopedDispatch forced(simd::DispatchLevel::kAvx2);
    t.simd_ns = MinNsPerItem(reps, items, fn);
  } else {
    t.simd_ns = t.scalar_ns;
  }
  return t;
}

}  // namespace

int main() {
  const bool avx2_usable = [] {
    const simd::ScopedDispatch probe(simd::DispatchLevel::kAvx2);
    return probe.ok();
  }();
  std::printf("SIMD scan kernels vs. scalar fallbacks (detected: %s%s)\n\n",
              simd::ToString(simd::DetectedLevel()),
              avx2_usable ? "" : " — AVX2 unusable, ratios degenerate to 1");

  // A scaled MODIS band: ~200k cells over 3 dims, 4x4 spatial chunks.
  const array::Array band =
      workload::MakeModisBand(/*days=*/10, /*lon_cells=*/256,
                              /*lat_cells=*/128, /*seed=*/7);
  const array::CellSpanView view(band);
  const auto num_cells = static_cast<size_t>(view.num_cells());
  std::printf("band: %zu cells in %lld chunks\n\n", num_cells,
              static_cast<long long>(band.num_chunks()));

  // Kernel-level inputs: a packed mega-column of cell positions and the
  // radiance attribute column. The predicate kernel runs on an L2-resident
  // slice so the comparison measures compute, not memory bandwidth (at full
  // size both variants converge on the DRAM streaming limit).
  const size_t ndims = 3;
  std::vector<int64_t> coords;
  coords.reserve(num_cells * ndims);
  for (const array::Chunk* chunk : view.chunks()) {
    const auto& packed = chunk->packed_coords();
    coords.insert(coords.end(), packed.begin(), packed.end());
  }
  const std::vector<double> radiance = view.GatherAttr(1);
  const size_t kernel_cells = std::min<size_t>(num_cells, 32768);
  // Middle ~50% per dimension: a realistic mixed pass/fail predicate.
  const std::vector<int64_t> box_lo = {2, 64, 32};
  const std::vector<int64_t> box_hi = {7, 191, 95};
  std::vector<uint8_t> mask(num_cells);

  const int kReps = 25;
  bench::JsonBenchWriter writer;
  const auto record = [&writer](const char* name, const VariantTimes& t,
                                int64_t items) {
    writer.Add({std::string(name) + "/scalar", t.scalar_ns,
                t.scalar_ns > 0 ? 1e9 / t.scalar_ns : 0.0});
    writer.Add({std::string(name) + "/simd", t.simd_ns,
                t.simd_ns > 0 ? 1e9 / t.simd_ns : 0.0});
    std::printf("%-24s %8.3f ns/item scalar  %8.3f ns/item simd  %5.2fx"
                "  (%lld items)\n",
                name, t.scalar_ns, t.simd_ns, t.Ratio(),
                static_cast<long long>(items));
  };

  // (a) The filter kernel: per-dimension range predicate over packed coords.
  const auto filter_t = TimeBothDispatches(
      kReps * 4, static_cast<int64_t>(kernel_cells),
      [&] {
        simd::RangeMask(coords.data(), kernel_cells, ndims, box_lo.data(),
                        box_hi.data(), mask.data());
        // Cheap checksum: the timed region is the kernel alone.
        return static_cast<double>(mask[0] + mask[kernel_cells / 2] +
                                   mask[kernel_cells - 1]);
      },
      avx2_usable);
  record("filter_kernel", filter_t, static_cast<int64_t>(kernel_cells));

  // (b) Attribute reductions over the packed double column.
  const auto sum_t = TimeBothDispatches(
      kReps, static_cast<int64_t>(num_cells),
      [&] { return simd::Sum(radiance.data(), radiance.size()); },
      avx2_usable);
  record("sum_kernel", sum_t, static_cast<int64_t>(num_cells));
  const auto minmax_t = TimeBothDispatches(
      kReps, static_cast<int64_t>(num_cells),
      [&] {
        return simd::Min(radiance.data(), radiance.size()) +
               simd::Max(radiance.data(), radiance.size());
      },
      avx2_usable);
  record("minmax_kernel", minmax_t, static_cast<int64_t>(num_cells));

  // (c) Batched bbox prune across many chunks at once.
  const size_t num_boxes = 16384;
  simd::BBoxSoA boxes;
  boxes.Resize(num_boxes, ndims);
  util::Rng rng(13);
  for (size_t c = 0; c < num_boxes; ++c) {
    for (size_t d = 0; d < ndims; ++d) {
      const auto lo = static_cast<int64_t>(rng.NextBounded(256));
      boxes.lo[d * num_boxes + c] = lo;
      boxes.hi[d * num_boxes + c] =
          lo + static_cast<int64_t>(rng.NextBounded(8));
    }
  }
  std::vector<uint8_t> box_mask(num_boxes);
  const auto bbox_t = TimeBothDispatches(
      kReps * 4, static_cast<int64_t>(num_boxes),
      [&] {
        simd::BBoxIntersectMask(boxes, box_lo.data(), box_hi.data(),
                                box_mask.data());
        return static_cast<double>(box_mask[0] + box_mask[num_boxes / 2] +
                                   box_mask[num_boxes - 1]);
      },
      avx2_usable);
  record("bbox_prune_kernel", bbox_t, static_cast<int64_t>(num_boxes));

  // (d) End-to-end operators on the band.
  const exec::CellBox cell_box{{2, 64, 32}, {7, 191, 95}};
  const auto filterbox_t = TimeBothDispatches(
      5, static_cast<int64_t>(num_cells),
      [&] {
        return static_cast<double>(
            exec::FilterBoxSpans(band, cell_box).num_cells());
      },
      avx2_usable);
  record("filterbox_spans_e2e", filterbox_t,
         static_cast<int64_t>(num_cells));
  const auto quantile_t = TimeBothDispatches(
      5, static_cast<int64_t>(num_cells),
      [&] {
        const auto lo = exec::AttrQuantile(band, 1, 0.0);
        const auto hi = exec::AttrQuantile(band, 1, 1.0);
        return *lo + *hi;
      },
      avx2_usable);
  record("quantile_extremes_e2e", quantile_t,
         static_cast<int64_t>(num_cells));
  const auto groupby_t = TimeBothDispatches(
      5, static_cast<int64_t>(num_cells),
      [&] {
        const auto groups = exec::GroupBySum(band, {2, 8, 8}, 1);
        return static_cast<double>(groups.size());
      },
      avx2_usable);
  record("groupby_sum_e2e", groupby_t, static_cast<int64_t>(num_cells));

  // Same-machine scalar/SIMD ratios: deterministic in direction, so the CI
  // trend check can gate the committed floor (filter kernel >= 2x). The
  // floor itself is emitted with the metrics so a baseline refresh (copying
  // this file over bench/baselines/) preserves the gate.
  writer.AddMetric("filter_simd_ratio", filter_t.Ratio());
  writer.AddMetric("sum_simd_ratio", sum_t.Ratio());
  writer.AddMetric("bbox_simd_ratio", bbox_t.Ratio());
  writer.AddMetric("filterbox_e2e_simd_ratio", filterbox_t.Ratio());
  writer.AddMetric("floor_filter_simd_ratio", kRequiredFilterRatio);

  if (!writer.WriteFile("BENCH_scan.json")) {
    std::fprintf(stderr, "failed to write BENCH_scan.json\n");
    return 1;
  }
  std::printf("\nWrote BENCH_scan.json\n");

  // The acceptance property this bench exists to demonstrate.
  if (avx2_usable && filter_t.Ratio() < kRequiredFilterRatio) {
    std::fprintf(stderr,
                 "FAIL: AVX2 filter kernel only %.2fx the scalar kernel "
                 "(>= %.0fx required)\n",
                 filter_t.Ratio(), kRequiredFilterRatio);
    return 1;
  }
  return 0;
}
