// Ablation microbenchmarks: per-operation costs of every partitioner —
// chunk placement, lookup, and scale-out planning — on a populated
// mid-size grid, plus the chunk-parallel placement prewarm across thread
// counts. These are the operations on the coordinator's critical path; the
// paper's schemes trade richer placement logic (tree descent, curve ranks)
// for better layouts.
//
// Emits BENCH_partitioners.json (ns/op + items/s) for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "array/schema.h"
#include "bench/gbench_json.h"
#include "cluster/cluster.h"
#include "core/hilbert_partitioner.h"
#include "core/partitioner_factory.h"
#include "util/rng.h"

namespace {

using namespace arraydb;

array::ArraySchema BenchSchema() {
  return array::ArraySchema(
      "bench",
      {array::DimensionDesc{"t", 0, 31, 1, false},
       array::DimensionDesc{"x", 0, 31, 1, false},
       array::DimensionDesc{"y", 0, 31, 1, false}},
      {array::AttributeDesc{"v", array::AttrType::kDouble}});
}

// Populates a 4-node cluster with `chunks` random chunks via `partitioner`.
void Populate(core::Partitioner& partitioner, cluster::Cluster& cluster,
              int chunks, util::Rng& rng) {
  for (int i = 0; i < chunks; ++i) {
    array::ChunkInfo info;
    info.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32))};
    if (cluster.Contains(info.coords)) continue;
    info.bytes = 1 << 20;
    info.cell_count = 1024;
    const auto node = partitioner.PlaceChunk(cluster, info);
    (void)cluster.PlaceChunk(info.coords, info.bytes, node);
  }
}

void BM_PlaceChunk(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  cluster::Cluster cluster(4, 100.0);
  auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
  util::Rng rng(7);
  Populate(*partitioner, cluster, 2000, rng);
  array::ChunkInfo probe;
  probe.bytes = 1 << 20;
  for (auto _ : state) {
    probe.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                    static_cast<int64_t>(rng.NextBounded(32)),
                    static_cast<int64_t>(rng.NextBounded(32))};
    benchmark::DoNotOptimize(partitioner->PlaceChunk(cluster, probe));
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

void BM_Locate(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  cluster::Cluster cluster(4, 100.0);
  auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
  util::Rng rng(11);
  Populate(*partitioner, cluster, 2000, rng);
  const auto chunks = cluster.AllChunks();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partitioner->Locate(chunks[i % chunks.size()].coords));
    ++i;
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

void BM_PlanScaleOut(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  for (auto _ : state) {
    state.PauseTiming();
    cluster::Cluster cluster(4, 100.0);
    auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
    util::Rng rng(13);
    Populate(*partitioner, cluster, 2000, rng);
    cluster.AddNodes(2);
    state.ResumeTiming();
    auto plan = partitioner->PlanScaleOut(cluster, 4);
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

// Chunk-parallel placement prewarm (the ingest fast path): batched Hilbert
// rank computation sharded over the thread pool. Thread counts beyond the
// machine's core count degenerate gracefully; results are identical for
// every thread count by construction.
void BM_PrewarmPlacement(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto schema = BenchSchema();
  util::Rng rng(21);
  std::vector<array::ChunkInfo> batch;
  batch.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    array::ChunkInfo info;
    info.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32))};
    info.bytes = 1 << 20;
    batch.push_back(info);
  }
  for (auto _ : state) {
    // Fresh partitioner per iteration so the rank memo starts cold.
    state.PauseTiming();
    core::HilbertPartitioner partitioner(schema, 4);
    state.ResumeTiming();
    partitioner.PrewarmPlacement(batch, threads);
    benchmark::DoNotOptimize(partitioner);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}

void AllKinds(benchmark::internal::Benchmark* b) {
  for (const auto kind : core::AllPartitionerKinds()) {
    b->Arg(static_cast<int>(kind));
  }
}

BENCHMARK(BM_PlaceChunk)->Apply(AllKinds);
BENCHMARK(BM_Locate)->Apply(AllKinds);
BENCHMARK(BM_PlanScaleOut)->Apply(AllKinds)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrewarmPlacement)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  arraydb::bench::JsonBenchWriter writer;
  arraydb::bench::JsonFileReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!writer.WriteFile("BENCH_partitioners.json")) {
    std::fprintf(stderr, "failed to write BENCH_partitioners.json\n");
    return 1;
  }
  std::printf("wrote BENCH_partitioners.json\n");
  benchmark::Shutdown();
  return 0;
}
