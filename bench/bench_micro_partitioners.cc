// Ablation microbenchmarks: per-operation costs of every partitioner —
// chunk placement, lookup, and scale-out planning — on a populated
// mid-size grid. These are the operations on the coordinator's critical
// path; the paper's schemes trade richer placement logic (tree descent,
// curve ranks) for better layouts.

#include <benchmark/benchmark.h>

#include <memory>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "core/partitioner_factory.h"
#include "util/rng.h"

namespace {

using namespace arraydb;

array::ArraySchema BenchSchema() {
  return array::ArraySchema(
      "bench",
      {array::DimensionDesc{"t", 0, 31, 1, false},
       array::DimensionDesc{"x", 0, 31, 1, false},
       array::DimensionDesc{"y", 0, 31, 1, false}},
      {array::AttributeDesc{"v", array::AttrType::kDouble}});
}

// Populates a 4-node cluster with `chunks` random chunks via `partitioner`.
void Populate(core::Partitioner& partitioner, cluster::Cluster& cluster,
              int chunks, util::Rng& rng) {
  for (int i = 0; i < chunks; ++i) {
    array::ChunkInfo info;
    info.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32))};
    if (cluster.Contains(info.coords)) continue;
    info.bytes = 1 << 20;
    info.cell_count = 1024;
    const auto node = partitioner.PlaceChunk(cluster, info);
    (void)cluster.PlaceChunk(info.coords, info.bytes, node);
  }
}

void BM_PlaceChunk(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  cluster::Cluster cluster(4, 100.0);
  auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
  util::Rng rng(7);
  Populate(*partitioner, cluster, 2000, rng);
  array::ChunkInfo probe;
  probe.bytes = 1 << 20;
  for (auto _ : state) {
    probe.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                    static_cast<int64_t>(rng.NextBounded(32)),
                    static_cast<int64_t>(rng.NextBounded(32))};
    benchmark::DoNotOptimize(partitioner->PlaceChunk(cluster, probe));
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

void BM_Locate(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  cluster::Cluster cluster(4, 100.0);
  auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
  util::Rng rng(11);
  Populate(*partitioner, cluster, 2000, rng);
  const auto chunks = cluster.AllChunks();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partitioner->Locate(chunks[i % chunks.size()].coords));
    ++i;
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

void BM_PlanScaleOut(benchmark::State& state) {
  const auto kind = static_cast<core::PartitionerKind>(state.range(0));
  const auto schema = BenchSchema();
  for (auto _ : state) {
    state.PauseTiming();
    cluster::Cluster cluster(4, 100.0);
    auto partitioner = core::MakePartitioner(kind, schema, 4, 100.0);
    util::Rng rng(13);
    Populate(*partitioner, cluster, 2000, rng);
    cluster.AddNodes(2);
    state.ResumeTiming();
    auto plan = partitioner->PlanScaleOut(cluster, 4);
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel(core::PartitionerKindName(kind));
}

void AllKinds(benchmark::internal::Benchmark* b) {
  for (const auto kind : core::AllPartitionerKinds()) {
    b->Arg(static_cast<int>(kind));
  }
}

BENCHMARK(BM_PlaceChunk)->Apply(AllKinds);
BENCHMARK(BM_Locate)->Apply(AllKinds);
BENCHMARK(BM_PlanScaleOut)->Apply(AllKinds)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
