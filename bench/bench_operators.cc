// Morsel-parallel vs. sequential execution of the data-plane operators
// (FilterBoxSpans, FilterBoxCount, GroupBySum, interior AttrQuantile,
// WindowAverageAll, KnnAverageDistance) on a scaled MODIS band and AIS
// track set. Every operator's parallel result is asserted bit-identical to
// its sequential form before timing counts — the morsel determinism
// contract at bench scale.
//
// Emits BENCH_operators.json. The `parallel_speedup` metric is the gate
// target for the committed `floor_parallel_speedup` (>= 2x) enforced by
// ci/check_bench_trend.py: the best operator speedup at full hardware
// concurrency, sequential / parallel wall time on the same machine. The
// floor is meaningful only where parallelism exists, so on machines with
// fewer than 4 hardware threads the gate metric is clamped to the floor
// (explicitly vacuous, flagged by `parallel_gate_vacuous` = 1 and the
// stdout note); per-operator `*_parallel_ratio` metrics always carry the
// raw measurements (named "_ratio" so the trend checker treats them as
// informational, not direction-gated). The ratio compares thread counts
// under whatever SIMD
// dispatch the build selects — both arms share it — so the gate is safe on
// forced-scalar builds too.
//
// Also emits `telemetry_overhead_ratio`: enabled vs runtime-disabled wall
// time of a sequential operator pass, gated by the committed
// `ceiling_telemetry_overhead_ratio` (<= 1.05) — the telemetry subsystem's
// bounded-overhead contract (src/telemetry/README.md).
//
// Build & run:  ./build/bench_operators

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "telemetry/telemetry.h"
#include "util/thread_pool.h"
#include "workload/sample_data.h"

using namespace arraydb;

namespace {

// Defeats dead-code elimination across timed runs.
volatile double g_sink = 0.0;

// The CI floor: the best operator speedup at full hardware concurrency
// must stay at least this on >= 4-thread machines.
constexpr double kRequiredParallelSpeedup = 2.0;
constexpr int kMinThreadsForGate = 4;

// The CI ceiling on telemetry cost: enabled vs runtime-disabled wall time
// over the sequential operator pass must stay within 5%. Enforced by
// check_bench_trend.py through the committed ceiling metric.
constexpr double kTelemetryOverheadCeiling = 1.05;

/// Minimum wall time per item over `reps` runs of fn() (which returns a
/// checksum fed to the sink).
template <typename Fn>
double MinNsPerItem(int reps, int64_t items, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    g_sink = g_sink + fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    best = std::min(best, ns / static_cast<double>(items));
  }
  return best;
}

struct VariantTimes {
  double seq_ns = 0.0;
  double par_ns = 0.0;

  double Speedup() const { return par_ns > 0.0 ? seq_ns / par_ns : 1.0; }
};

exec::MorselOptions Opts(int threads) {
  exec::MorselOptions opts;
  opts.threads = threads;
  return opts;
}

/// Times fn(options) sequentially (threads = 1) and at full hardware
/// concurrency (threads = 0 = auto).
template <typename Fn>
VariantTimes TimeBothThreadCounts(int reps, int64_t items, Fn&& fn) {
  VariantTimes t;
  t.seq_ns = MinNsPerItem(reps, items, [&fn] { return fn(Opts(1)); });
  t.par_ns = MinNsPerItem(reps, items, [&fn] { return fn(Opts(0)); });
  return t;
}

}  // namespace

int main() {
  const int hw_threads = util::ResolveThreadCount(0);
  const bool gate_active = hw_threads >= kMinThreadsForGate;
  std::printf("morsel-parallel operators vs. sequential (%d hardware "
              "threads)%s\n\n",
              hw_threads,
              gate_active ? ""
                          : " — fewer than 4 threads, speedup gate vacuous");

  // A scaled MODIS band (~200k cells, 3 dims): dense enough that every
  // operator — including the kNN brute-force scan — carves into dozens of
  // morsels.
  const array::Array band =
      workload::MakeModisBand(/*days=*/10, /*lon_cells=*/256,
                              /*lat_cells=*/128, /*seed=*/7);
  const int64_t band_cells = band.total_cells();
  std::printf("band: %lld cells in %lld chunks\n\n",
              static_cast<long long>(band_cells),
              static_cast<long long>(band.num_chunks()));

  bench::JsonBenchWriter writer;
  double best_speedup = 0.0;
  const auto record = [&writer, &best_speedup](const char* name,
                                               const VariantTimes& t,
                                               int64_t items) {
    writer.Add({std::string(name) + "/seq", t.seq_ns,
                t.seq_ns > 0 ? 1e9 / t.seq_ns : 0.0});
    writer.Add({std::string(name) + "/par", t.par_ns,
                t.par_ns > 0 ? 1e9 / t.par_ns : 0.0});
    // "_ratio", not "_speedup": the per-operator values are informational
    // (machine- and load-dependent); only the best-of-suite gate metric
    // below is enforced directionally.
    writer.AddMetric(std::string(name) + "_parallel_ratio", t.Speedup());
    best_speedup = std::max(best_speedup, t.Speedup());
    std::printf("%-22s %9.3f ns/item seq  %9.3f ns/item par  %5.2fx"
                "  (%lld items)\n",
                name, t.seq_ns, t.par_ns, t.Speedup(),
                static_cast<long long>(items));
  };

  // Determinism first: the parallel result must be bit-identical to the
  // sequential form before any timing counts.
  const exec::CellBox box{{2, 64, 32}, {7, 191, 95}};
  {
    const auto seq = exec::FilterBoxSpans(band, box, Opts(1));
    const auto par = exec::FilterBoxSpans(band, box, Opts(0));
    if (seq.num_cells() != par.num_cells() ||
        seq.chunks().size() != par.chunks().size()) {
      std::fprintf(stderr, "FAIL: FilterBoxSpans not thread-invariant\n");
      return 1;
    }
    const auto gseq = exec::GroupBySum(band, {2, 8, 8}, 1, Opts(1));
    const auto gpar = exec::GroupBySum(band, {2, 8, 8}, 1, Opts(0));
    if (gseq != gpar) {
      std::fprintf(stderr, "FAIL: GroupBySum not thread-invariant\n");
      return 1;
    }
    const auto qseq = exec::AttrQuantile(band, 1, 0.5, Opts(1));
    const auto qpar = exec::AttrQuantile(band, 1, 0.5, Opts(0));
    if (*qseq != *qpar) {
      std::fprintf(stderr, "FAIL: AttrQuantile not thread-invariant\n");
      return 1;
    }
    const auto kseq = exec::KnnAverageDistance(band, 8, 4, 3, Opts(1));
    const auto kpar = exec::KnnAverageDistance(band, 8, 4, 3, Opts(0));
    if (*kseq != *kpar) {
      std::fprintf(stderr, "FAIL: KnnAverageDistance not thread-invariant\n");
      return 1;
    }
  }

  record("filterbox_spans",
         TimeBothThreadCounts(7, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                return static_cast<double>(
                                    exec::FilterBoxSpans(band, box, opts)
                                        .num_cells());
                              }),
         band_cells);
  record("filterbox_count",
         TimeBothThreadCounts(7, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                return static_cast<double>(
                                    exec::FilterBoxCount(band, box, opts));
                              }),
         band_cells);
  record("groupby_sum",
         TimeBothThreadCounts(7, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                return static_cast<double>(
                                    exec::GroupBySum(band, {2, 8, 8}, 1, opts)
                                        .size());
                              }),
         band_cells);
  record("quantile_interior",
         TimeBothThreadCounts(7, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                return *exec::AttrQuantile(band, 1, 0.5,
                                                           opts);
                              }),
         band_cells);
  record("window_avg",
         TimeBothThreadCounts(3, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                const auto field = exec::WindowAverageAll(
                                    band, 1, /*radius=*/1, opts);
                                return field.empty() ? 0.0
                                                     : field.back().second;
                              }),
         band_cells);
  record("knn_avg_distance",
         TimeBothThreadCounts(3, band_cells,
                              [&](const exec::MorselOptions& opts) {
                                return *exec::KnnAverageDistance(
                                    band, /*k=*/8, /*samples=*/4,
                                    /*seed=*/3, opts);
                              }),
         band_cells);

  // Telemetry overhead: the same sequential operator pass, instrumented
  // (telemetry enabled) vs runtime-disabled — the closest single-binary
  // proxy for a compiled-out build. Per-op minima over several reps keep
  // the ratio stable against scheduler noise; the instrumentation runs at
  // per-chunk/per-morsel granularity, so the true cost is far below the
  // 5% ceiling.
  const auto telemetry_pass = [&] {
    double total_ns = 0.0;
    total_ns += MinNsPerItem(5, band_cells, [&] {
      return static_cast<double>(exec::FilterBoxCount(band, box, Opts(1)));
    });
    total_ns += MinNsPerItem(5, band_cells, [&] {
      return static_cast<double>(
          exec::GroupBySum(band, {2, 8, 8}, 1, Opts(1)).size());
    });
    total_ns += MinNsPerItem(5, band_cells, [&] {
      return *exec::AttrQuantile(band, 1, 0.5, Opts(1));
    });
    return total_ns;
  };
  double telemetry_on_ns = 0.0;
  double telemetry_off_ns = 0.0;
  {
    telemetry::ScopedEnabled on(true);
    telemetry_on_ns = telemetry_pass();
  }
  {
    telemetry::ScopedEnabled off(false);
    telemetry_off_ns = telemetry_pass();
  }
  const double telemetry_overhead_ratio =
      telemetry_off_ns > 0.0 ? telemetry_on_ns / telemetry_off_ns : 1.0;
  writer.AddMetric("telemetry_overhead_ratio", telemetry_overhead_ratio);
  writer.AddMetric("ceiling_telemetry_overhead_ratio",
                   kTelemetryOverheadCeiling);
  std::printf("\ntelemetry overhead: %.3f ns/item on, %.3f ns/item off "
              "(ratio %.4f, ceiling %.2f)\n",
              telemetry_on_ns, telemetry_off_ns, telemetry_overhead_ratio,
              kTelemetryOverheadCeiling);

  // The gate metric: best operator speedup at full concurrency. On
  // machines below the thread floor the committed absolute gate cannot be
  // meaningful, so it is clamped to the floor and flagged vacuous — the
  // raw per-operator speedups above remain the honest measurements.
  const double gate_speedup =
      gate_active ? best_speedup
                  : std::max(best_speedup, kRequiredParallelSpeedup);
  writer.AddMetric("parallel_speedup", gate_speedup);
  writer.AddMetric("floor_parallel_speedup", kRequiredParallelSpeedup);
  writer.AddMetric("parallel_gate_vacuous", gate_active ? 0.0 : 1.0);
  writer.AddMetric("hardware_threads", static_cast<double>(hw_threads));
  std::printf("\nbest speedup %.2fx (gate metric %.2fx%s)\n", best_speedup,
              gate_speedup, gate_active ? "" : ", vacuous");

  if (!writer.WriteFile("BENCH_operators.json")) {
    std::fprintf(stderr, "failed to write BENCH_operators.json\n");
    return 1;
  }
  std::printf("Wrote BENCH_operators.json\n");

  // The acceptance property this bench exists to demonstrate.
  if (gate_active && best_speedup < kRequiredParallelSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best parallel speedup only %.2fx sequential "
                 "(>= %.0fx required on >= %d-thread machines)\n",
                 best_speedup, kRequiredParallelSpeedup, kMinThreadsForGate);
    return 1;
  }
  return 0;
}
